// Package fedtrans is the public API of this FedTrans reproduction
// (Zhu et al., "FedTrans: Efficient Federated Learning via Multi-Model
// Transformation", MLSys 2024).
//
// The package wires together the internal substrates — synthetic federated
// datasets, simulated device traces, the from-scratch neural-network
// stack, and the FedTrans coordinator (Model Transformer, Client Manager,
// Model Aggregator) — behind a single Options/Run entry point:
//
//	opts := fedtrans.DefaultOptions()
//	opts.Profile = "femnist"
//	summary, err := fedtrans.Run(opts)
//
// Advanced users can construct a Session to inspect the model suite and
// drive evaluation themselves.
package fedtrans

import (
	"fmt"
	"os"
	"sync"
	"time"

	"fedtrans/internal/chaos"
	"fedtrans/internal/data"
	"fedtrans/internal/device"
	"fedtrans/internal/fl"
	"fedtrans/internal/metrics"
	"fedtrans/internal/model"
	"fedtrans/internal/netcoord"
	"fedtrans/internal/selection"
)

// Options configures a FedTrans training run. Zero values fall back to the
// paper defaults (Table 7) at reproduction scale.
type Options struct {
	// Profile selects the synthetic dataset profile: "femnist" (default),
	// "cifar10", "speech", "openimage", "vit", "scale" (a deliberately
	// small task geometry for massive-client rounds; see ScaleOptions), or
	// "async" (the femnist geometry with staleness-bounded asynchronous
	// rounds enabled by default; see AsyncOptions).
	Profile string
	// Clients is the number of federated clients (default 50).
	Clients int
	// Population, when > 0, overrides Clients and switches the session to
	// a generative population: every client's data shard, device-trace
	// entry, and RNG stream is synthesized deterministically on demand
	// from (Seed, clientID) instead of being materialized up front, so
	// session setup cost and resident state are independent of the
	// population size — O(active clients), not O(Population). Results are
	// bit-identical to a materialized run with Clients = Population,
	// which opens the 10⁶-client workload class (see ScaleOptions /
	// MassiveOptions).
	Population int
	// EdgeAggregators ≥ 2 enables hierarchical two-tier aggregation: that
	// many edge aggregators each own a disjoint slice of every model's
	// flat parameter space and merge into a root in fixed edge order at
	// the round boundary. Bit-identical to single-tier aggregation for
	// every StreamWindow and MaxStaleness setting; only the peak
	// per-aggregator accumulator memory changes (1/E of the flat space
	// per edge).
	EdgeAggregators int
	// Heterogeneity is the Dirichlet label-skew parameter h; lower is more
	// heterogeneous (default 1).
	Heterogeneity float64
	// Rounds is the training-round budget (default 120).
	Rounds int
	// ClientsPerRound is the per-round participant count (default 10).
	ClientsPerRound int
	// LocalSteps, BatchSize, LearningRate configure client training
	// (defaults 20, 10, 0.05 per §5.1).
	LocalSteps   int
	BatchSize    int
	LearningRate float64
	// Alpha is the Cell-activeness transformation threshold (default 0.9).
	Alpha float64
	// Beta is the Degree-of-Convergence threshold (default 0.025 at
	// reproduction scale; the paper's 0.003 assumes 1000+ round budgets).
	Beta float64
	// Gamma and Delta are the DoC slope count and slope step (defaults 4
	// and 3 at reproduction scale).
	Gamma, Delta int
	// WidenFactor and DeepenCells set the transformation degrees
	// (defaults 2 and 1).
	WidenFactor float64
	DeepenCells int
	// CapacitySpread is the max/min device capacity ratio of the simulated
	// trace (default 32, matching the paper's ≥29x disparity).
	CapacitySpread float64
	// AllowL2S enables large-to-small weight sharing (off by default; see
	// Table 1).
	AllowL2S bool
	// DropoutRate injects client churn: the probability that a selected
	// participant downloads the model but never returns an update.
	DropoutRate float64
	// GuidedSelection replaces uniform participant sampling with an
	// Oort-style guided selector (high statistical utility, acceptable
	// system speed).
	GuidedSelection bool
	// StreamWindow bounds the number of in-flight client updates in the
	// streaming aggregation pipeline; the coordinator's peak update
	// memory is O(StreamWindow × model bytes) regardless of
	// ClientsPerRound. 0 uses 2×GOMAXPROCS. Results are identical for
	// every window size.
	StreamWindow int
	// MaxStaleness ≥ 1 switches the coordinator to FedBuff-style
	// staleness-bounded asynchronous rounds: clients train against the
	// model version current at dispatch, rounds commit the earliest
	// arrivals instead of waiting for the slowest participant, and any
	// update still in flight after MaxStaleness server rounds is
	// force-committed with its contribution discounted by 1/√(1+s).
	// 0 (the default) keeps fully synchronous rounds.
	MaxStaleness int
	// AsyncConcurrency is the constant number of clients kept training at
	// once in asynchronous mode (default 2×ClientsPerRound, never below
	// ClientsPerRound). Ignored when MaxStaleness is 0.
	AsyncConcurrency int
	// Seed drives all randomness (default 1).
	Seed int64
	// Quorum enables elastic rounds: a round commits when at least
	// ceil(Quorum × selected) client updates fold successfully, and is
	// aborted (weights untouched) otherwise. 0 keeps the strict legacy
	// behavior where every update must arrive.
	Quorum float64
	// RetryBudget is the number of deterministic re-training attempts per
	// failed client upload before the client counts as a round failure.
	RetryBudget int
	// RetryBackoff is the simulated delay (seconds) added before the first
	// retry; each subsequent attempt doubles it.
	RetryBackoff float64
	// ClientTimeout drops any client whose simulated round time exceeds
	// this many seconds (0 = no timeout). Timed-out clients still charge
	// their training compute and download bytes. In a networked session
	// (ServeAddr) the same figure also bounds each wire frame exchange
	// in wall-clock seconds, so a stalled agent surfaces a typed timeout
	// instead of hanging the coordinator; when 0, the wire falls back to
	// a 2-minute frame deadline.
	ClientTimeout float64
	// Chaos configures the deterministic fault-injection harness. All
	// rates zero (the default) leaves the run fault-free.
	Chaos ChaosOptions
	// ChurnJoinRate and ChurnLeaveRate enable client churn: each round,
	// every offline client rejoins with probability ChurnJoinRate and
	// every online client leaves with probability ChurnLeaveRate. Both
	// zero disables churn. The online population never drops below
	// ClientsPerRound.
	ChurnJoinRate  float64
	ChurnLeaveRate float64
	// CheckpointPath, when non-empty, makes the coordinator write a
	// resumable checkpoint to this file every CheckpointEvery rounds
	// (atomically, via a temp file + rename). Session.Resume restores a
	// run from such a blob and reproduces the uninterrupted run
	// bit-for-bit.
	CheckpointPath string
	// CheckpointEvery is the checkpoint cadence in rounds (default 10
	// when CheckpointPath is set).
	CheckpointEvery int
	// EvalSample, when > 0 and smaller than the client count, restricts
	// every full-population evaluation pass (the periodic EvaluateAll,
	// the final accuracy sweep, and Personalized) to a fixed
	// deterministic panel of EvalSample clients drawn once from the run
	// seed. Per-client outputs then have one entry per panel client in
	// ascending client order. EvalSample >= the population is the
	// identity: results are bit-identical to an unsampled run.
	EvalSample int
	// AttentionHeads sets the head count of every attention cell in the
	// initial model (0 and 1 both mean single-head attention, the
	// pre-multi-head behavior, and are bit-identical to it). Only the
	// "vit" profile builds attention cells; setting this on any other
	// profile is an error, as is a head count that does not divide the
	// model dimension.
	AttentionHeads int
	// ServeAddr, when non-empty, runs the session as a networked
	// coordinator: a TCP server listens on this host:port (port 0 picks
	// a free port; see Session.CoordinatorAddr) and every client
	// local-training attempt is dispatched to connected agent processes
	// (RunAgent) over the FTNC protocol instead of the in-process
	// session pool. Training is a pure function of (weights, shard,
	// seed) and the weight codec is lossless, so results — Summary,
	// checkpoints, everything — are byte-identical to an in-process run
	// with the same Options. Run blocks until enough agents connect to
	// serve the round's attempts.
	ServeAddr string
}

// ChaosOptions configures seeded fault injection for robustness testing.
// Faults are drawn from a dedicated RNG stream, so a given (Seed, rates)
// pair yields the same fault schedule on every run.
type ChaosOptions struct {
	// Seed drives the fault stream. 0 derives one from Options.Seed.
	Seed int64
	// CrashRate is the per-attempt probability that a client crashes
	// mid-round: it downloads the model but never trains or uploads.
	CrashRate float64
	// CorruptUploadRate is the per-attempt probability that a client's
	// upload arrives structurally corrupted and is rejected by the
	// aggregator.
	CorruptUploadRate float64
	// NonFiniteRate is the per-attempt probability that a client's update
	// contains NaN/Inf values, rejected at the aggregation boundary.
	NonFiniteRate float64
	// StragglerRate is the per-attempt probability that a client is
	// delayed by StragglerDelay simulated seconds (interacting with
	// ClientTimeout, if set).
	StragglerRate  float64
	StragglerDelay float64
}

func (c ChaosOptions) enabled() bool {
	return c.CrashRate > 0 || c.CorruptUploadRate > 0 || c.NonFiniteRate > 0 || c.StragglerRate > 0
}

// ScaleOptions returns the massive-round stress profile: thousands of
// clients per round on a deliberately small task, exercising the
// streaming sharded aggregation pipeline (selection, assignment, local
// training, clip/quantize, accumulator folding) rather than the compute
// kernels. Peak coordinator memory stays O(StreamWindow × model bytes)
// even at ClientsPerRound in the thousands. Set Population to detach
// the population size from resident memory entirely (generative
// clients), and EdgeAggregators to shard the round accumulator; both
// leave results bit-identical.
func ScaleOptions() Options {
	o := DefaultOptions()
	o.Profile = "scale"
	o.Clients = 2000
	o.ClientsPerRound = 1000
	o.Rounds = 10
	o.LocalSteps = 2
	o.BatchSize = 8
	return o
}

// MassiveOptions is the extended scale profile at production population
// size: one million generative clients (nothing materialized until a
// client is sampled) behind four edge aggregators. Note the final
// evaluation pass still visits every client, so full runs are long;
// lower Population for CI-sized experiments.
func MassiveOptions() Options {
	o := ScaleOptions()
	o.Population = 1_000_000
	o.EdgeAggregators = 4
	o.Rounds = 5
	return o
}

// AsyncOptions returns the staleness-bounded asynchronous profile:
// femnist task geometry with FedBuff-style rounds (staleness bound 2,
// twice ClientsPerRound in flight), the configuration behind the
// asynchronous scheduling comparison in the paper's related work.
func AsyncOptions() Options {
	o := DefaultOptions()
	o.Profile = "async"
	o.MaxStaleness = 2
	return o
}

// DefaultOptions returns paper-default options at reproduction scale.
func DefaultOptions() Options {
	return Options{
		Profile:         "femnist",
		Clients:         50,
		Heterogeneity:   1,
		Rounds:          120,
		ClientsPerRound: 10,
		LocalSteps:      20,
		BatchSize:       10,
		LearningRate:    0.05,
		Alpha:           0.9,
		Beta:            0.025,
		Gamma:           4,
		Delta:           3,
		WidenFactor:     2,
		DeepenCells:     1,
		CapacitySpread:  32,
		Seed:            1,
	}
}

func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if o.Profile == "" {
		o.Profile = d.Profile
	}
	if o.Clients <= 0 {
		o.Clients = d.Clients
	}
	if o.Heterogeneity <= 0 {
		o.Heterogeneity = d.Heterogeneity
	}
	if o.Rounds <= 0 {
		o.Rounds = d.Rounds
	}
	if o.ClientsPerRound <= 0 {
		o.ClientsPerRound = d.ClientsPerRound
	}
	if o.LocalSteps <= 0 {
		o.LocalSteps = d.LocalSteps
	}
	if o.BatchSize <= 0 {
		o.BatchSize = d.BatchSize
	}
	if o.LearningRate <= 0 {
		o.LearningRate = d.LearningRate
	}
	if o.Alpha <= 0 {
		o.Alpha = d.Alpha
	}
	if o.Beta <= 0 {
		o.Beta = d.Beta
	}
	if o.Gamma <= 0 {
		o.Gamma = d.Gamma
	}
	if o.Delta <= 0 {
		o.Delta = d.Delta
	}
	if o.WidenFactor <= 1 {
		o.WidenFactor = d.WidenFactor
	}
	if o.DeepenCells <= 0 {
		o.DeepenCells = d.DeepenCells
	}
	if o.CapacitySpread <= 1 {
		o.CapacitySpread = d.CapacitySpread
	}
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
	if o.Population > 0 {
		// A generative population is the client count; Clients only
		// matters for materialized sessions.
		o.Clients = o.Population
	}
	return o
}

// ModelInfo describes one model of the trained suite.
type ModelInfo struct {
	// Arch is a compact architecture string, e.g.
	// "dense(32)->dense(32)->head(16)".
	Arch string
	// MACs is the per-sample forward multiply-accumulate count.
	MACs float64
	// Params is the scalar parameter count.
	Params int64
}

// Summary reports the outcome of a training run.
type Summary struct {
	// MeanAccuracy is the average per-client test accuracy on each
	// client's best compatible model.
	MeanAccuracy float64
	// ClientAccuracy lists per-client accuracies.
	ClientAccuracy []float64
	// AccuracyIQR is the interquartile range of client accuracies.
	AccuracyIQR float64
	// TrainMACs is the total training cost in multiply-accumulate
	// operations across all clients.
	TrainMACs float64
	// NetworkBytes and StorageBytes are communication volume and peak
	// server storage.
	NetworkBytes int64
	StorageBytes int64
	// Models describes the generated model suite in creation order.
	Models []ModelInfo
	// Rounds is the number of rounds executed.
	Rounds int
	// Failures counts client attempts that ended in a fault (crash,
	// corrupt or non-finite upload, timeout) after exhausting retries;
	// Retries counts re-training attempts. AbortedRounds counts rounds
	// that lost quorum and left the suite untouched. All zero on
	// fault-free runs.
	Failures      int
	Retries       int
	AbortedRounds int
	// WallClock is the total simulated wall-clock time of the run: the
	// sum of per-round completion times. Synchronous rounds charge their
	// slowest participant; asynchronous rounds charge only the progress
	// of the virtual clock, so straggler delays overlap across rounds.
	WallClock float64
	// MeanStaleness is the mean number of server rounds between an
	// update's dispatch and its fold, over all committed updates. Zero on
	// synchronous runs (MaxStaleness 0).
	MeanStaleness float64
}

// Session is a configured FedTrans run whose suite and per-client results
// can be inspected after Run.
type Session struct {
	opts    Options
	dataset *data.Dataset
	trace   *device.Trace
	runtime *fl.Runtime
	hub     *netcoord.Hub

	sinkMu  sync.Mutex
	sinkErr error
}

// NewSession validates options and materializes the dataset, device trace,
// and coordinator.
func NewSession(opts Options) (*Session, error) {
	opts = opts.withDefaults()
	switch opts.Profile {
	case "femnist", "cifar10", "speech", "openimage", "vit", "scale", "async":
	default:
		return nil, fmt.Errorf("fedtrans: unknown profile %q", opts.Profile)
	}
	if opts.ClientsPerRound > opts.Clients {
		return nil, fmt.Errorf("fedtrans: ClientsPerRound (%d) exceeds Clients (%d)",
			opts.ClientsPerRound, opts.Clients)
	}
	if opts.MaxStaleness < 0 {
		return nil, fmt.Errorf("fedtrans: negative MaxStaleness %d", opts.MaxStaleness)
	}
	if opts.Profile == "async" && opts.MaxStaleness == 0 {
		opts.MaxStaleness = 2
	}
	model.ResetIDs()
	dcfg := data.Config{
		Profile:       opts.Profile,
		Clients:       opts.Clients,
		Heterogeneity: opts.Heterogeneity,
		Seed:          opts.Seed,
	}
	if opts.Profile == "async" {
		// The async profile is the femnist task geometry; the asynchrony
		// lives in the round loop, not the data.
		dcfg.Profile = "femnist"
	}
	if opts.Profile == "scale" {
		// Small per-client shards: the point is round volume, not local
		// compute.
		dcfg.MinSamples, dcfg.MaxSamples, dcfg.TestSamples = 8, 16, 8
	}
	var ds *data.Dataset
	if opts.Population > 0 {
		ds = data.GenerateLazy(dcfg)
	} else {
		ds = data.Generate(dcfg)
	}
	spec := initialSpec(opts.Profile, ds)
	if opts.AttentionHeads < 0 {
		return nil, fmt.Errorf("fedtrans: negative AttentionHeads %d", opts.AttentionHeads)
	}
	if opts.AttentionHeads > 1 {
		if spec.Family != "attention" {
			return nil, fmt.Errorf("fedtrans: AttentionHeads requires the vit profile (profile %q builds %s cells)",
				opts.Profile, spec.Family)
		}
		if d := spec.Input[1]; d%opts.AttentionHeads != 0 {
			return nil, fmt.Errorf("fedtrans: AttentionHeads %d does not divide the model dimension %d",
				opts.AttentionHeads, d)
		}
		spec.Heads = opts.AttentionHeads
	}
	base := spec.Build(randFor(opts.Seed)).MACsPerSample()
	tcfg := device.TraceConfig{
		N:               opts.Clients,
		MinCapacityMACs: base,
		MaxCapacityMACs: base * opts.CapacitySpread,
		Seed:            opts.Seed + 100,
	}
	var trace *device.Trace
	if opts.Population > 0 {
		trace = device.NewTraceLazy(tcfg)
	} else {
		trace = device.NewTrace(tcfg)
	}
	cfg := fl.DefaultConfig()
	cfg.Rounds = opts.Rounds
	cfg.ClientsPerRound = opts.ClientsPerRound
	cfg.Local = fl.LocalConfig{Steps: opts.LocalSteps, BatchSize: opts.BatchSize, LR: opts.LearningRate}
	cfg.Transform.Alpha = opts.Alpha
	cfg.Transform.Beta = opts.Beta
	cfg.Transform.Gamma = opts.Gamma
	cfg.Transform.Delta = opts.Delta
	cfg.Transform.WidenFactor = opts.WidenFactor
	cfg.Transform.DeepenCells = opts.DeepenCells
	cfg.Soft.AllowL2S = opts.AllowL2S
	cfg.DropoutRate = opts.DropoutRate
	if opts.GuidedSelection {
		cfg.Selector = selection.NewOort()
	}
	cfg.StreamWindow = opts.StreamWindow
	cfg.MaxStaleness = opts.MaxStaleness
	cfg.AsyncConcurrency = opts.AsyncConcurrency
	cfg.EdgeAggregators = opts.EdgeAggregators
	cfg.Seed = opts.Seed
	cfg.Quorum = opts.Quorum
	cfg.RetryBudget = opts.RetryBudget
	cfg.RetryBackoff = opts.RetryBackoff
	cfg.ClientTimeout = opts.ClientTimeout
	if opts.Chaos.enabled() {
		seed := opts.Chaos.Seed
		if seed == 0 {
			seed = opts.Seed + 10_007
		}
		cfg.Chaos = chaos.Config{
			Seed:           seed,
			CrashRate:      opts.Chaos.CrashRate,
			CorruptRate:    opts.Chaos.CorruptUploadRate,
			NonFiniteRate:  opts.Chaos.NonFiniteRate,
			StragglerRate:  opts.Chaos.StragglerRate,
			StragglerDelay: opts.Chaos.StragglerDelay,
		}
	}
	if opts.ChurnJoinRate > 0 || opts.ChurnLeaveRate > 0 {
		cfg.Churn = selection.ChurnConfig{
			JoinRate:  opts.ChurnJoinRate,
			LeaveRate: opts.ChurnLeaveRate,
			MinOnline: opts.ClientsPerRound,
		}
	}
	cfg.EvalSample = opts.EvalSample
	s := &Session{opts: opts, dataset: ds, trace: trace}
	if opts.ServeAddr != "" {
		hub, err := netcoord.NewHub(opts.ServeAddr, netcoord.RunConfig{
			Data:       dcfg,
			Generative: opts.Population > 0,
			Local:      cfg.Local,
			IOTimeout:  time.Duration(opts.ClientTimeout * float64(time.Second)),
		})
		if err != nil {
			return nil, err
		}
		cfg.Trainer = hub
		s.hub = hub
	}
	if opts.CheckpointPath != "" {
		if opts.CheckpointEvery <= 0 {
			opts.CheckpointEvery = 10
		}
		cfg.CheckpointEvery = opts.CheckpointEvery
		cfg.CheckpointSink = func(round int, blob []byte) {
			if err := writeFileAtomic(opts.CheckpointPath, blob); err != nil {
				s.sinkMu.Lock()
				if s.sinkErr == nil {
					s.sinkErr = fmt.Errorf("fedtrans: checkpoint at round %d: %w", round, err)
				}
				s.sinkMu.Unlock()
			}
		}
	}
	s.runtime = fl.New(cfg, ds, trace, spec)
	return s, nil
}

// writeFileAtomic writes blob to path via a temp file + rename so a crash
// mid-write never leaves a truncated checkpoint behind.
func writeFileAtomic(path string, blob []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Run executes training and returns the summary. A networked session
// (Options.ServeAddr) stops its coordinator server when training ends,
// so connected agents exit cleanly.
func (s *Session) Run() Summary {
	sum := s.summarize(s.runtime.Run())
	s.Close()
	return sum
}

// CoordinatorAddr is the actual listen address of a networked session's
// coordinator server (useful with port 0 in ServeAddr). Empty for
// in-process sessions.
func (s *Session) CoordinatorAddr() string {
	if s.hub == nil {
		return ""
	}
	return s.hub.Addr()
}

// Close releases the session's network resources (the coordinator
// server of a ServeAddr session). Idempotent; Run and Resume call it on
// completion, so explicit Close is only needed for sessions abandoned
// before running.
func (s *Session) Close() {
	if s.hub != nil {
		s.hub.Close()
	}
}

// RunAgent joins a networked coordinator (a session created with
// Options.ServeAddr, or `fedtrans -serve`) as a pool of workers client
// agents: each worker downloads models and trains clients over the FTNC
// protocol until the coordinator finishes. Blocks for the lifetime of
// the coordinator; returns nil on clean shutdown.
func RunAgent(addr string, workers int) error {
	return netcoord.RunAgents(netcoord.AgentConfig{Addr: addr, Workers: workers})
}

// Resume restores the coordinator from a checkpoint blob previously
// written via Options.CheckpointPath (or Session.Checkpoint) and runs the
// remaining rounds. The resumed run reproduces the uninterrupted run
// bit-for-bit, provided the Session was built with the same Options.
func (s *Session) Resume(checkpoint []byte) (Summary, error) {
	if err := s.runtime.Restore(checkpoint); err != nil {
		return Summary{}, err
	}
	sum := s.summarize(s.runtime.Run())
	s.Close()
	return sum, nil
}

// Checkpoint serializes the coordinator's current state (suite weights,
// aggregator shards, RNG position, selector/churn/optimizer state) into a
// self-describing blob accepted by Resume.
func (s *Session) Checkpoint() ([]byte, error) { return s.runtime.Checkpoint() }

// CheckpointError reports the first error encountered while encoding or
// writing checkpoints during Run, if any. Checkpoint failures never abort
// training; callers that rely on resumability should check this after Run.
func (s *Session) CheckpointError() error {
	s.sinkMu.Lock()
	defer s.sinkMu.Unlock()
	if s.sinkErr != nil {
		return s.sinkErr
	}
	return s.runtime.CheckpointErr()
}

func (s *Session) summarize(res fl.Result) Summary {
	sum := Summary{
		MeanAccuracy:   res.MeanAcc,
		ClientAccuracy: res.ClientAcc,
		AccuracyIQR:    res.Box.IQR(),
		TrainMACs:      res.Costs.TrainMACs,
		NetworkBytes:   res.Costs.NetworkBytes,
		StorageBytes:   res.Costs.StorageBytes,
		Rounds:         res.RoundsRun,
		Failures:       res.Failures,
		Retries:        res.Retries,
		AbortedRounds:  res.AbortedRounds,
		MeanStaleness:  res.MeanStaleness,
	}
	for _, rt := range res.RoundTimes {
		sum.WallClock += rt
	}
	for _, m := range s.runtime.Suite() {
		sum.Models = append(sum.Models, ModelInfo{
			Arch: m.ArchString(), MACs: m.MACsPerSample(), Params: m.ParamCount(),
		})
	}
	return sum
}

// Models describes the current model suite (after Run, the full trained
// suite).
func (s *Session) Models() []ModelInfo {
	var out []ModelInfo
	for _, m := range s.runtime.Suite() {
		out = append(out, ModelInfo{Arch: m.ArchString(), MACs: m.MACsPerSample(), Params: m.ParamCount()})
	}
	return out
}

// DeviceDisparity reports the max/min capacity ratio of the simulated
// trace.
func (s *Session) DeviceDisparity() float64 { return s.trace.Disparity() }

// Run is the one-call convenience API: configure, train, summarize.
func Run(opts Options) (Summary, error) {
	s, err := NewSession(opts)
	if err != nil {
		return Summary{}, err
	}
	return s.Run(), nil
}

// Mean is re-exported for example programs that aggregate accuracies.
func Mean(values []float64) float64 { return metrics.Mean(values) }
