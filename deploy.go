package fedtrans

import (
	"fmt"

	"fedtrans/internal/assign"
	"fedtrans/internal/fl"
	"fedtrans/internal/model"
	"fedtrans/internal/tensor"
)

// ExportModel serializes the i-th model of the trained suite (creation
// order, as reported by Models) into a self-contained blob that
// LoadModel can deploy without the training session.
func (s *Session) ExportModel(i int) ([]byte, error) {
	suite := s.runtime.Suite()
	if i < 0 || i >= len(suite) {
		return nil, fmt.Errorf("fedtrans: model index %d out of range [0, %d)", i, len(suite))
	}
	return suite[i].MarshalBinary()
}

// Deployed is a loaded, inference-only model.
type Deployed struct {
	m *model.Model
}

// LoadModel deserializes a blob produced by Session.ExportModel.
func LoadModel(blob []byte) (*Deployed, error) {
	// Scoped load: a deployment inside a parallel experiment grid must
	// not perturb the shared process-wide ID counter.
	m, err := model.UnmarshalModelScoped(blob, model.NewIDGen())
	if err != nil {
		return nil, err
	}
	return &Deployed{m: m}, nil
}

// Predict returns the predicted class for one flat feature vector.
func (d *Deployed) Predict(features []float64) (int, error) {
	wantDim := 1
	for _, s := range d.m.InputShape {
		wantDim *= s
	}
	if len(features) != wantDim {
		return 0, fmt.Errorf("fedtrans: feature dim %d, model expects %d", len(features), wantDim)
	}
	buf := make([]tensor.Float, len(features))
	for i, v := range features {
		buf[i] = tensor.Float(v)
	}
	x := tensor.FromSlice(buf, 1, wantDim)
	logits := d.m.Forward(x)
	return logits.ArgMaxRow(0), nil
}

// PredictBatch classifies a batch of flat feature vectors.
func (d *Deployed) PredictBatch(features [][]float64) ([]int, error) {
	out := make([]int, len(features))
	for i, f := range features {
		y, err := d.Predict(f)
		if err != nil {
			return nil, err
		}
		out[i] = y
	}
	return out, nil
}

// Info describes the deployed model.
func (d *Deployed) Info() ModelInfo {
	return ModelInfo{Arch: d.m.ArchString(), MACs: d.m.MACsPerSample(), Params: d.m.ParamCount()}
}

// Personalized fine-tunes each client's best compatible model on its own
// local data for the given number of SGD steps and returns the resulting
// per-client accuracies — the standard FL personalization pass. The
// trained suite is not mutated. Call after Session.Run.
func (s *Session) Personalized(steps int) []float64 {
	rng := randFor(s.opts.Seed + 12345)
	accs := make([]float64, len(s.dataset.Clients))
	suite := s.runtime.Suite()
	for c := range s.dataset.Clients {
		compatible := assign.Compatible(suite, s.trace.Devices[c].CapacityMACs)
		m := s.runtime.Manager().Best(c, compatible)
		if m == nil {
			continue
		}
		_, acc := fl.Personalize(m, &s.dataset.Clients[c], steps, s.opts.LearningRate, rng)
		accs[c] = acc
	}
	return accs
}
