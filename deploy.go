package fedtrans

import (
	"fmt"

	"fedtrans/internal/assign"
	"fedtrans/internal/data"
	"fedtrans/internal/fl"
	"fedtrans/internal/model"
	"fedtrans/internal/tensor"
)

// ExportModel serializes the i-th model of the trained suite (creation
// order, as reported by Models) into a self-contained blob that
// LoadModel can deploy without the training session.
func (s *Session) ExportModel(i int) ([]byte, error) {
	suite := s.runtime.Suite()
	if i < 0 || i >= len(suite) {
		return nil, fmt.Errorf("fedtrans: model index %d out of range [0, %d)", i, len(suite))
	}
	return suite[i].MarshalBinary()
}

// Deployed is a loaded, inference-only model.
type Deployed struct {
	m *model.Model
}

// LoadModel deserializes a blob produced by Session.ExportModel.
func LoadModel(blob []byte) (*Deployed, error) {
	// Scoped load: a deployment inside a parallel experiment grid must
	// not perturb the shared process-wide ID counter.
	m, err := model.UnmarshalModelScoped(blob, model.NewIDGen())
	if err != nil {
		return nil, err
	}
	return &Deployed{m: m}, nil
}

func (d *Deployed) inputDim() int {
	wantDim := 1
	for _, s := range d.m.InputShape {
		wantDim *= s
	}
	return wantDim
}

// Predict returns the predicted class for one flat feature vector.
func (d *Deployed) Predict(features []float64) (int, error) {
	wantDim := d.inputDim()
	if len(features) != wantDim {
		return 0, fmt.Errorf("fedtrans: feature dim %d, model expects %d", len(features), wantDim)
	}
	buf := make([]tensor.Float, len(features))
	for i, v := range features {
		buf[i] = tensor.Float(v)
	}
	x := tensor.FromSlice(buf, 1, wantDim)
	logits := d.m.Forward(x)
	return logits.ArgMaxRow(0), nil
}

// PredictBatch classifies a batch of flat feature vectors in one
// forward pass: rows are validated up front, converted into a single
// contiguous batch buffer, and pushed through the strided-batch kernels
// together — one Forward and two allocations for the whole batch, not
// one per row.
func (d *Deployed) PredictBatch(features [][]float64) ([]int, error) {
	wantDim := d.inputDim()
	for i, f := range features {
		if len(f) != wantDim {
			return nil, fmt.Errorf("fedtrans: row %d feature dim %d, model expects %d", i, len(f), wantDim)
		}
	}
	if len(features) == 0 {
		return nil, nil
	}
	buf := make([]tensor.Float, len(features)*wantDim)
	for i, f := range features {
		row := buf[i*wantDim : (i+1)*wantDim]
		for j, v := range f {
			row[j] = tensor.Float(v)
		}
	}
	x := tensor.FromSlice(buf, len(features), wantDim)
	logits := d.m.Forward(x)
	out := make([]int, len(features))
	for i := range out {
		out[i] = logits.ArgMaxRow(i)
	}
	return out, nil
}

// Info describes the deployed model.
func (d *Deployed) Info() ModelInfo {
	return ModelInfo{Arch: d.m.ArchString(), MACs: d.m.MACsPerSample(), Params: d.m.ParamCount()}
}

// Personalized fine-tunes each client's best compatible model on its own
// local data for the given number of SGD steps and returns the resulting
// per-client accuracies — the standard FL personalization pass. The
// trained suite is not mutated. Call after Session.Run.
func (s *Session) Personalized(steps int) []float64 {
	rng := randFor(s.opts.Seed + 12345)
	n := s.dataset.Len()
	accs := make([]float64, n)
	suite := s.runtime.Suite()
	var cur data.ClientCursor
	for c := 0; c < n; c++ {
		compatible := assign.Compatible(suite, s.trace.At(c).CapacityMACs)
		m := s.runtime.Manager().Best(c, compatible)
		if m == nil {
			continue
		}
		_, acc := fl.Personalize(m, s.dataset.Fetch(&cur, c), steps, s.opts.LearningRate, rng)
		accs[c] = acc
	}
	return accs
}
