package fedtrans

import (
	"fmt"
	"sync"

	"fedtrans/internal/assign"
	"fedtrans/internal/data"
	"fedtrans/internal/fl"
	"fedtrans/internal/model"
	"fedtrans/internal/tensor"
)

// ExportModel serializes the i-th model of the trained suite (creation
// order, as reported by Models) into a self-contained blob that
// LoadModel can deploy without the training session.
func (s *Session) ExportModel(i int) ([]byte, error) {
	suite := s.runtime.Suite()
	if i < 0 || i >= len(suite) {
		return nil, fmt.Errorf("fedtrans: model index %d out of range [0, %d)", i, len(suite))
	}
	return suite[i].MarshalBinary()
}

// Deployed is a loaded, inference-only model. Prediction runs through a
// pool of inference sessions — each a copy-on-write clone of the model
// with its own forward workspaces and a reusable input buffer — so
// concurrent Predict/PredictBatch calls never contend and steady-state
// calls allocate nothing model-sized.
type Deployed struct {
	m   *model.Model
	dim int
	// pool holds idle *inferSession values.
	pool sync.Pool
}

// inferSession is one pooled forward pipeline: a COW clone (weights
// shared with the deployed model, workspaces private) plus an input
// tensor grown once and resliced per request.
type inferSession struct {
	m  *model.Model
	in *tensor.Tensor
}

// ensureIn shapes the session's input buffer to rows×dim, reusing its
// backing array whenever capacity suffices.
func (s *inferSession) ensureIn(rows, dim int) *tensor.Tensor {
	if s.in == nil {
		s.in = tensor.New(rows, dim)
		return s.in
	}
	n := rows * dim
	if cap(s.in.Data) < n {
		s.in.Data = make([]tensor.Float, n)
	}
	s.in.Data = s.in.Data[:n]
	s.in.Shape[0], s.in.Shape[1] = rows, dim
	return s.in
}

// LoadModel deserializes a blob produced by Session.ExportModel.
func LoadModel(blob []byte) (*Deployed, error) {
	// Scoped load: a deployment inside a parallel experiment grid must
	// not perturb the shared process-wide ID counter.
	m, err := model.UnmarshalModelScoped(blob, model.NewIDGen())
	if err != nil {
		return nil, err
	}
	dim := 1
	for _, s := range m.InputShape {
		dim *= s
	}
	return &Deployed{m: m, dim: dim}, nil
}

// InputDim is the flat feature dimension the model expects.
func (d *Deployed) InputDim() int { return d.dim }

func (d *Deployed) session() *inferSession {
	if s, ok := d.pool.Get().(*inferSession); ok {
		return s
	}
	return &inferSession{m: d.m.Clone()}
}

func (d *Deployed) release(s *inferSession) { d.pool.Put(s) }

// Predict returns the predicted class for one flat feature vector.
func (d *Deployed) Predict(features []float64) (int, error) {
	if len(features) != d.dim {
		return 0, fmt.Errorf("fedtrans: feature dim %d, model expects %d", len(features), d.dim)
	}
	s := d.session()
	x := s.ensureIn(1, d.dim)
	for i, v := range features {
		x.Data[i] = tensor.Float(v)
	}
	class := s.m.Forward(x).ArgMaxRow(0)
	d.release(s)
	return class, nil
}

// PredictBatch classifies a batch of flat feature vectors in one
// forward pass: rows are validated up front, packed into the session's
// contiguous input buffer, and pushed through the strided-batch kernels
// together — one Forward for the whole batch, not one per row.
func (d *Deployed) PredictBatch(features [][]float64) ([]int, error) {
	for i, f := range features {
		if len(f) != d.dim {
			return nil, fmt.Errorf("fedtrans: row %d feature dim %d, model expects %d", i, len(f), d.dim)
		}
	}
	if len(features) == 0 {
		return nil, nil
	}
	s := d.session()
	x := s.ensureIn(len(features), d.dim)
	for i, f := range features {
		row := x.Data[i*d.dim : (i+1)*d.dim]
		for j, v := range f {
			row[j] = tensor.Float(v)
		}
	}
	logits := s.m.Forward(x)
	out := make([]int, len(features))
	for i := range out {
		out[i] = logits.ArgMaxRow(i)
	}
	d.release(s)
	return out, nil
}

// Info describes the deployed model.
func (d *Deployed) Info() ModelInfo {
	return ModelInfo{Arch: d.m.ArchString(), MACs: d.m.MACsPerSample(), Params: d.m.ParamCount()}
}

// Personalized fine-tunes each client's best compatible model on its own
// local data for the given number of SGD steps and returns the resulting
// per-client accuracies — the standard FL personalization pass. The
// trained suite is not mutated. Call after Session.Run.
//
// When Options.EvalSample is set, only the deterministic evaluation
// panel is fine-tuned and the returned slice has one entry per panel
// client, in panel (ascending client ID) order.
func (s *Session) Personalized(steps int) []float64 {
	rng := randFor(s.opts.Seed + 12345)
	suite := s.runtime.Suite()
	var cur data.ClientCursor
	personalize := func(c int) float64 {
		compatible := assign.Compatible(suite, s.trace.At(c).CapacityMACs)
		m := s.runtime.Manager().Best(c, compatible)
		if m == nil {
			return 0
		}
		_, acc := fl.Personalize(m, s.dataset.Fetch(&cur, c), steps, s.opts.LearningRate, rng)
		return acc
	}
	if panel := s.runtime.EvalClients(); panel != nil {
		accs := make([]float64, len(panel))
		for i, c := range panel {
			accs[i] = personalize(c)
		}
		return accs
	}
	n := s.dataset.Len()
	accs := make([]float64, n)
	for c := 0; c < n; c++ {
		accs[c] = personalize(c)
	}
	return accs
}
